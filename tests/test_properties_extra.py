"""Additional property-based tests: feature removal, Weiser, and
postdominators against brute-force definitions."""

import itertools
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.postdom import immediate_postdominators, postdominators
from repro.core import (
    executable_program,
    monovariant_program,
    remove_feature,
    weiser_slice,
)
from repro.lang.interp import ExecutionLimitExceeded, run_program
from repro.sdg import VertexKind, build_sdg
from repro.workloads.generator import GenConfig, generate_program

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

seeds = st.integers(min_value=0, max_value=10_000)


def build_random(seed, n_procs=5):
    program, info = generate_program(GenConfig(seed=seed, n_procs=n_procs))
    return program, info, build_sdg(program, info)


@settings(**SETTINGS)
@given(seed=seeds)
def test_feature_removal_preserves_surviving_prints(seed):
    """Removing the forward slice of an arbitrary statement must leave
    the surviving prints' behaviour untouched (incl. input alignment:
    the $input chain keeps surviving reads aligned because any read an
    earlier removed read feeds is itself in the feature)."""
    program, _info, sdg = build_random(seed)
    statements = [
        vid
        for vid, vertex in sdg.vertices.items()
        if vertex.kind == VertexKind.STATEMENT and vertex.proc == "main"
    ]
    if not statements:
        return
    rng = random.Random(seed)
    feature_seed = rng.choice(sorted(statements))
    result = remove_feature(sdg, [feature_seed])
    if not result.pdgs:
        return
    executable = executable_program(result)

    # Feature removal is context-sensitive: a print may be removed under
    # some calling contexts and kept under others.  The clean property
    # concerns prints *fully outside* the feature (no configuration in
    # the forward stack-configuration slice): every execution of those
    # must be preserved with identical values and relative order.
    from repro.core.criteria import reachable_contexts_criterion
    from repro.pds import encode_sdg, poststar

    encoding = encode_sdg(sdg)
    query = reachable_contexts_criterion(encoding, [feature_seed])
    feature_elems = encoding.elems(poststar(encoding.pds, query))
    fully_surviving_uids = {
        vertex.stmt_uid
        for vid, vertex in sdg.vertices.items()
        if vertex.kind == VertexKind.CALL
        and vertex.label == "call print"
        and vid not in feature_elems
    }
    for trial in range(2):
        inputs = [rng.randint(-4, 9) for _ in range(25)]
        try:
            original = run_program(program, inputs, max_steps=2_000_000)
            reduced = run_program(executable.program, inputs, max_steps=2_000_000)
        except ExecutionLimitExceeded:
            continue
        expected = [
            (uid, values)
            for uid, _fmt, values in original.prints
            if uid in fully_surviving_uids
        ]
        got = [
            (executable.stmt_map.get(uid), values)
            for uid, _fmt, values in reduced.prints
            if executable.stmt_map.get(uid) in fully_surviving_uids
        ]
        assert got == expected


@settings(**SETTINGS)
@given(seed=seeds)
def test_weiser_faithful_on_random_programs(seed):
    program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = weiser_slice(sdg, criterion)
    sliced = monovariant_program(sdg, result.slice_set)
    rng = random.Random(seed)
    for trial in range(2):
        inputs = [rng.randint(-4, 9) for _ in range(25)]
        try:
            original = run_program(program, inputs, max_steps=2_000_000)
            new = run_program(sliced.program, inputs, max_steps=2_000_000)
        except ExecutionLimitExceeded:
            continue
        mapped = [(sliced.stmt_map.get(uid), values) for uid, _f, values in new.prints]
        expected = [(uid, values) for uid, _f, values in original.prints]
        assert mapped == expected


# -- postdominators vs brute force ------------------------------------------------


@st.composite
def random_cfg(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    cfg = ControlFlowGraph("entry", "exit")
    nodes = ["entry"] + ["n%d" % i for i in range(n)] + ["exit"]
    # a spine ensures exit reachability
    for a, b in zip(nodes, nodes[1:]):
        cfg.add_edge(a, b)
    extra = draw(st.integers(min_value=0, max_value=8))
    for _ in range(extra):
        a = draw(st.sampled_from(nodes[:-1]))
        b = draw(st.sampled_from(nodes[1:]))
        cfg.add_edge(a, b)
    return cfg


def brute_force_postdominates(cfg, d, n):
    """d postdominates n iff every path n ->* exit passes through d
    (checked by removing d and testing reachability)."""
    if d == n:
        return True
    # can exit be reached from n without visiting d?
    seen = {n}
    stack = [n]
    while stack:
        node = stack.pop()
        if node == cfg.exit:
            return False
        for succ in cfg.successors(node):
            if succ != d and succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return True


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_postdominators_match_brute_force(cfg):
    pdom = postdominators(cfg)
    for n in cfg.nodes:
        # brute force only meaningful for nodes that can reach exit
        reaches_exit = cfg.exit in cfg.reachable_from(n)
        if not reaches_exit:
            continue
        for d in cfg.nodes:
            expected = brute_force_postdominates(cfg, d, n)
            assert (d in pdom[n]) == expected, (n, d)


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_ipdom_consistent_with_pdom(cfg):
    pdom = postdominators(cfg)
    ipdom = immediate_postdominators(cfg, pdom)
    for n in cfg.nodes:
        candidate = ipdom[n]
        if candidate is None:
            continue
        assert candidate in pdom[n] and candidate != n
        # every other strict postdominator postdominates the ipdom
        for other in pdom[n] - {n, candidate}:
            assert other in pdom[candidate]
