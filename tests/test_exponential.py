"""Fig. 13 / §4.3 exponential-family tests."""

import pytest

from repro.core import executable_program, specialization_slice
from repro.lang.interp import run_program
from repro.workloads.exponential import exponential_program, exponential_source


def versions_of_pk(k):
    _program, _info, sdg = exponential_program(k)
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    return result


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_exponential_specialization_count(k):
    """All 2^k - 1 nonempty subsets of {g1..gk} arise as actual-out
    patterns (the empty-need variant contributes no slice elements)."""
    result = versions_of_pk(k)
    assert result.version_counts()["Pk"] == 2 ** k - 1


def test_growth_is_exponential():
    counts = [versions_of_pk(k).version_counts()["Pk"] for k in (2, 3, 4, 5)]
    ratios = [b / a for a, b in zip(counts, counts[1:])]
    assert all(ratio > 1.8 for ratio in ratios)


def test_source_generator_shape():
    text = exponential_source(3)
    assert text.count("Pk(m - 1);") == 3
    assert "t2 = 0;" in text
    program, _info, sdg = exponential_program(3)
    assert len(program.procs) == 2


def test_k1_source_valid():
    program, _info, sdg = exponential_program(1)
    assert sdg.vertex_count() > 0


@pytest.mark.parametrize("k", [2, 3])
def test_exponential_slice_semantics(k):
    program, _info, sdg = exponential_program(k)
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    executable = executable_program(result)
    for branch_inputs in ([1] * k, [2] * k, list(range(1, k + 1))):
        original = run_program(program, branch_inputs)
        sliced = run_program(executable.program, branch_inputs)
        assert original.values == sliced.values
