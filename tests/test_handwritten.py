"""Hand-written workload tests: functional correctness of the subjects
plus slice faithfulness on every print criterion."""

import random

import pytest

from repro.core import executable_program, specialization_slice
from repro.lang.interp import run_program
from repro.workloads.handwritten import (
    HANDWRITTEN,
    load_scheduler,
    load_statistics,
    load_tokenizer,
)
from repro.workloads.wc import text_to_inputs


def test_tokenizer_classification():
    program, _info, _sdg = load_tokenizer()
    result = run_program(program, text_to_inputs("abc 42 + x7 ="))
    numbers, idents, ops, unknown, longest = result.values
    assert numbers == 1
    assert idents == 2  # abc, x7
    assert ops == 2  # + and =
    assert unknown == 0
    assert longest == 3  # abc


def test_tokenizer_unknown_characters():
    program, _info, _sdg = load_tokenizer()
    result = run_program(program, text_to_inputs("@ # 5"))
    assert result.values[3] == 2  # @ and #


def test_scheduler_conserves_jobs():
    program, _info, _sdg = load_scheduler()
    arrivals = [3, 1, 2, 3, 2, 1, 3]
    result = run_program(program, arrivals + [0], max_steps=2_000_000)
    completed, demotions, promotions, idle, clock = result.values
    assert completed == len(arrivals)
    assert clock >= len(arrivals)
    assert demotions >= 0 and promotions >= 0


def test_scheduler_idles_without_work():
    program, _info, _sdg = load_scheduler()
    result = run_program(program, [0], max_steps=100_000)
    assert result.values[0] == 0  # nothing completed


def test_statistics_values():
    program, _info, _sdg = load_statistics()
    samples = [4, -2, 10, 0, 7]
    result = run_program(program, [len(samples)] + samples)
    count, total, mean, minimum, maximum, spread, sign_gcd = result.values
    assert count == 5
    assert total == 19
    assert mean == 3
    assert (minimum, maximum, spread) == (-2, 10, 12)
    assert sign_gcd == 1  # gcd(3 positives, 1 negative)


def test_statistics_empty_stream():
    program, _info, _sdg = load_statistics()
    result = run_program(program, [0])
    assert result.values[0] == 0


@pytest.mark.parametrize("name", sorted(HANDWRITTEN))
def test_every_print_slice_faithful(name):
    program, _info, sdg = HANDWRITTEN[name]()
    rng = random.Random(hash(name) & 0xFFFF)
    input_sets = []
    if name == "tokenizer":
        input_sets = [text_to_inputs("foo 12 + bar99"), text_to_inputs("")]
    elif name == "scheduler":
        input_sets = [[3, 2, 1, 3, 0], [0]]
    else:
        input_sets = [[4, 5, -1, 2, 8], [0]]

    for print_vid in sdg.print_call_vertices():
        criterion = sdg.print_criterion([print_vid])
        result = specialization_slice(sdg, criterion)
        executable = executable_program(result)
        expected_uid = sdg.vertices[print_vid].stmt_uid
        for inputs in input_sets:
            original = run_program(program, inputs, max_steps=2_000_000)
            sliced = run_program(executable.program, inputs, max_steps=2_000_000)
            mapped = [
                (executable.stmt_map.get(uid), values)
                for uid, _fmt, values in sliced.prints
            ]
            expected = [
                (uid, values)
                for uid, _fmt, values in original.prints
                if uid == expected_uid
            ]
            assert mapped == expected, (name, print_vid, inputs)


@pytest.mark.parametrize("name", sorted(HANDWRITTEN))
def test_handwritten_reslice_idempotent(name):
    from repro.core import reslice_check

    _program, _info, sdg = HANDWRITTEN[name]()
    criterion = sdg.print_criterion([sdg.print_call_vertices()[0]])
    result = specialization_slice(sdg, criterion)
    assert reslice_check(result)


def test_tokenizer_slice_drops_unrelated_counters():
    """Slicing on the numbers count must drop the operator machinery."""
    program, _info, sdg = load_tokenizer()
    numbers_print = sdg.print_call_vertices()[0]
    result = specialization_slice(sdg, sdg.print_criterion([numbers_print]))
    executable = executable_program(result)
    from repro.lang import pretty

    text = pretty(executable.program)
    assert "n_ops" not in text
    assert "is_op" not in text
