"""Binkley / Weiser / flawed-method baseline tests (§1, §5, Fig. 14)."""

import pytest

from repro.core import (
    binkley_slice,
    flawed_specialization_slice,
    monovariant_program,
    specialization_slice,
    weiser_slice,
)
from repro.lang import ast_nodes as A
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig1, load_fig2, load_flawed_example


pytestmark = pytest.mark.smoke


def test_binkley_fig14c_adds_back_g2_100():
    program, _i, sdg = load_fig1()
    result = binkley_slice(sdg, sdg.print_criterion())
    added_labels = {sdg.vertices[v].label for v in result.added}
    assert "g2 = 100" in added_labels
    # Extra elements exist but stay within the program.
    assert result.slice_set > result.closure


def test_binkley_slice_is_executable_and_faithful():
    program, _i, sdg = load_fig1()
    result = binkley_slice(sdg, sdg.print_criterion())
    sl = monovariant_program(sdg, result.slice_set)
    text = pretty(sl.program)
    # Monovariant: a single p with both parameters, untouched call sites.
    assert "void p(int a, int b)" in text
    assert "g2 = 100" in text
    assert run_program(program).values == run_program(sl.program).values


def test_binkley_no_mismatch_remains():
    _p, _i, sdg = load_fig1()
    result = binkley_slice(sdg, sdg.print_criterion())
    for site in sdg.call_sites.values():
        if site.call_vertex not in result.slice_set:
            continue
        for role, fi in sdg.formal_ins[site.callee].items():
            if fi in result.slice_set:
                ai = site.actual_ins.get(role)
                assert ai is None or ai in result.slice_set


def test_binkley_on_recursive_program():
    program, _i, sdg = load_fig2()
    result = binkley_slice(sdg, sdg.print_criterion())
    sl = monovariant_program(sdg, result.slice_set)
    assert run_program(program).values == run_program(sl.program).values


def test_weiser_superset_of_binkley():
    _p, _i, sdg = load_fig1()
    criterion = sdg.print_criterion()
    weiser = weiser_slice(sdg, criterion)
    binkley = binkley_slice(sdg, criterion)
    assert weiser.slice_set >= binkley.closure
    assert len(weiser.slice_set) >= len(binkley.slice_set)


def test_weiser_executable_and_faithful():
    program, _i, sdg = load_fig1()
    result = weiser_slice(sdg, sdg.print_criterion())
    sl = monovariant_program(sdg, result.slice_set)
    assert run_program(program).values == run_program(sl.program).values


def test_weiser_whole_call_sites():
    _p, _i, sdg = load_fig1()
    result = weiser_slice(sdg, sdg.print_criterion())
    for site in sdg.call_sites.values():
        if site.call_vertex in result.slice_set:
            for vid in site.actual_ins.values():
                assert vid in result.slice_set


def test_flawed_keeps_dead_assignment():
    """§1: the flawed method retains z = 3 in the a-only variant; Alg. 1
    does not."""
    _p, _i, sdg = load_flawed_example()
    criterion = sdg.print_criterion()
    flawed = flawed_specialization_slice(sdg, criterion)
    a_only = flawed.variant_vertices("p", {("param", 0)})
    labels = {sdg.vertices[v].label for v in a_only}
    assert "int z = 3" in labels
    assert "g1 = a" in labels

    optimal = specialization_slice(sdg, criterion, contexts="empty")
    small_p = min(
        optimal.specializations_of("p"), key=lambda s: len(s.orig_vertices)
    )
    optimal_labels = {sdg.vertices[v].label for v in small_p.orig_vertices}
    assert "int z = 3" not in optimal_labels
    assert "g1 = a" in optimal_labels


def test_flawed_is_complete_but_larger():
    _p, _i, sdg = load_flawed_example()
    criterion = sdg.print_criterion()
    flawed = flawed_specialization_slice(sdg, criterion)
    optimal = specialization_slice(sdg, criterion, contexts="empty")
    assert flawed.total_vertices() > optimal.sdg.vertex_count()


def test_monovariant_sizes_ordering():
    """closure <= binkley <= weiser on the running example."""
    _p, _i, sdg = load_fig1()
    criterion = sdg.print_criterion()
    binkley = binkley_slice(sdg, criterion)
    weiser = weiser_slice(sdg, criterion)
    assert len(binkley.closure) <= len(binkley.slice_set) <= len(weiser.slice_set)
