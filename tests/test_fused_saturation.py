"""Fused multi-criterion saturation: byte identity with sequential runs.

The batched kernels (:func:`repro.pds.kernel.prestar_many_csr`,
:func:`repro.pds.kernel.poststar_many_csr`) promise that one worklist
pass over criterion-membership bitsets projects, per criterion, an
automaton *payload-identical* to the criterion's own sequential run —
and the engine's fused batch path promises the same for everything
downstream: slices, closure elements, version counts, saturation
artifacts and their ``__sats__`` digests.  This suite pins both layers:

* kernel differential over the 26-program corpus (the same generator
  settings as :mod:`tests.test_kernel_differential`) and both contexts
  modes, sharing one query-automaton object per criterion so the
  comparison is exact;
* properties: a singleton batch equals the plain saturation, batch
  order never leaks into any projection, the object kernel falls back
  to per-criterion runs;
* session differential: fused-on vs fused-off sessions byte-identical
  in results and persisted ``__sats__`` bytes; warm stores skip the
  fused pass entirely; ``remove_features_many`` matches per-feature
  ``remove_feature``;
* the gating knob (``REPRO_BATCH_SATURATION`` / ``--batch-saturation``)
  and the store's inverted keymap sidecar.

``repro.open_session`` memoizes sessions by source hash; every test
that needs *independent* sessions builds :class:`SlicingSession`
directly.
"""

import os
import random

import pytest

from repro.engine import SlicingSession
from repro.engine.canonical import stable_key_digest
from repro.fsa.serialize import automaton_to_payload
from repro.lang import pretty
from repro.pds import poststar, poststar_many, prestar, prestar_many
from repro.pds.kernel import (
    poststar_csr,
    poststar_many_csr,
    prestar_csr,
    prestar_many_csr,
)
from repro.workloads.generator import GenConfig, generate_program
from repro.workloads.wc import scaled_wc_source
from repro import kernelcfg

N_PROGRAMS = 26
MAX_CRITERIA = 4


def _source(seed):
    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    return pretty(program)


def _criteria(session):
    prints = len(session.sdg.print_call_vertices())
    criteria = [("print", index) for index in range(min(prints, MAX_CRITERIA))]
    criteria.append("prints")
    return criteria


def _queries(session, contexts):
    """One query automaton *object* per criterion, shared between the
    fused and the sequential runs under comparison."""
    from repro.engine.canonical import resolve_criterion_spec

    automata = []
    for criterion in _criteria(session):
        kind, payload = resolve_criterion_spec(session.sdg, criterion)
        automata.append(session._query_automaton(kind, payload, contexts))
    return automata


def _payloads(automata):
    return [automaton_to_payload(a) for a in automata]


def _sat_digests(session):
    digests = {}
    with session._lock:
        futures = dict(session._futures)
    for (cache_kind, key), future in futures.items():
        if cache_kind != "saturation" or not future.done():
            continue
        artifact = future.result()
        digests[stable_key_digest(key)] = (
            artifact.kind,
            automaton_to_payload(artifact.automaton),
            artifact.footprint,
        )
    return digests


# -- kernel-level differential -----------------------------------------------------


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
@pytest.mark.parametrize("contexts", ["reachable", "empty"])
def test_fused_kernels_match_sequential_on_corpus(seed, contexts):
    session = SlicingSession(_source(seed), kernel="csr")
    pds = session.encoding.pds
    automata = _queries(session, contexts)
    for trim in (False, True):
        tag = (seed, contexts, trim)
        fused = prestar_many_csr(pds, automata, trim=trim)
        solo = [prestar_csr(pds, a, trim=trim) for a in automata]
        assert _payloads(fused) == _payloads(solo), tag
        fused = poststar_many_csr(pds, automata, trim=trim)
        solo = [poststar_csr(pds, a, trim=trim) for a in automata]
        assert _payloads(fused) == _payloads(solo), tag


@pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 5))
def test_fused_kernels_match_object_kernel(seed):
    """Transitively with the csr-vs-object differential, but pinned
    directly: the fused projections equal the *object* worklists too."""
    session = SlicingSession(_source(seed), kernel="csr")
    pds = session.encoding.pds
    automata = _queries(session, "reachable")
    assert _payloads(prestar_many_csr(pds, automata, trim=True)) == _payloads(
        [prestar(pds, a, trim=True, kernel="object") for a in automata]
    )
    assert _payloads(poststar_many_csr(pds, automata, trim=True)) == _payloads(
        [poststar(pds, a, trim=True, kernel="object") for a in automata]
    )


@pytest.mark.smoke
@pytest.mark.parametrize("seed", range(6))
def test_singleton_batch_is_the_plain_saturation(seed):
    session = SlicingSession(_source(seed), kernel="csr")
    pds = session.encoding.pds
    for automaton in _queries(session, "reachable"):
        (fused,) = prestar_many_csr(pds, [automaton], trim=True)
        assert automaton_to_payload(fused) == automaton_to_payload(
            prestar_csr(pds, automaton, trim=True)
        )
        (fused,) = poststar_many_csr(pds, [automaton], trim=True)
        assert automaton_to_payload(fused) == automaton_to_payload(
            poststar_csr(pds, automaton, trim=True)
        )


@pytest.mark.parametrize("seed", range(8))
def test_batch_order_never_leaks(seed):
    """Permutation invariance: each criterion's projection depends only
    on its own automaton, never on its neighbours or their order."""
    session = SlicingSession(_source(seed), kernel="csr")
    pds = session.encoding.pds
    automata = _queries(session, "reachable")
    reference = _payloads(prestar_many_csr(pds, automata, trim=True))
    order = list(range(len(automata)))
    rng = random.Random(seed)
    for _ in range(3):
        rng.shuffle(order)
        shuffled = prestar_many_csr(pds, [automata[i] for i in order], trim=True)
        assert [automaton_to_payload(a) for a in shuffled] == [
            reference[i] for i in order
        ], order
    reference = _payloads(poststar_many_csr(pds, automata, trim=True))
    rng.shuffle(order)
    shuffled = poststar_many_csr(pds, [automata[i] for i in order], trim=True)
    assert [automaton_to_payload(a) for a in shuffled] == [
        reference[i] for i in order
    ], order


@pytest.mark.smoke
def test_many_wrappers_fall_back_on_object_kernel():
    session = SlicingSession(_source(0), kernel="object")
    pds = session.encoding.pds
    automata = _queries(session, "reachable")
    fused = prestar_many(pds, automata, trim=True, kernel="object")
    solo = [prestar(pds, a, trim=True, kernel="object") for a in automata]
    assert _payloads(fused) == _payloads(solo)
    fused = poststar_many(pds, automata, trim=True, kernel="object")
    solo = [poststar(pds, a, trim=True, kernel="object") for a in automata]
    assert _payloads(fused) == _payloads(solo)


@pytest.mark.smoke
def test_empty_batch():
    session = SlicingSession(_source(0), kernel="csr")
    pds = session.encoding.pds
    assert prestar_many_csr(pds, []) == []
    assert poststar_many_csr(pds, []) == []


# -- session-level differential ----------------------------------------------------


@pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 5))
@pytest.mark.parametrize("contexts", ["reachable", "empty"])
def test_fused_sessions_byte_identical(seed, contexts):
    source = _source(seed)
    fused = SlicingSession(source, kernel="csr")
    plain = SlicingSession(source, kernel="csr")
    criteria = _criteria(fused)
    if contexts == "empty":
        # Multi-vertex criteria are not generally readable out in
        # empty-contexts mode (a pre-existing limitation on both
        # kernels, fused or not); the per-print criteria are.
        criteria = [c for c in criteria if c != "prints"]
    # backend pinned to thread here and below: these tests assert the
    # *in-parent* fused-pass counters (fused_batches & co.), which on
    # the process backend move inside pool workers instead; the
    # process-tier equivalents live in tests/test_pds_payload.py.
    fused_results = fused.slice_many(
        criteria, contexts=contexts, batch_saturation="on", backend="thread"
    )
    plain_results = plain.slice_many(
        criteria, contexts=contexts, batch_saturation="off", backend="thread"
    )
    for criterion, f, p in zip(criteria, fused_results, plain_results):
        tag = (seed, contexts, criterion)
        assert automaton_to_payload(f.a1) == automaton_to_payload(p.a1), tag
        assert automaton_to_payload(f.a6) == automaton_to_payload(p.a6), tag
        assert f.closure_elems() == p.closure_elems(), tag
        assert f.version_counts() == p.version_counts(), tag
        assert f.footprint == p.footprint, tag
    assert _sat_digests(fused) == _sat_digests(plain), (seed, contexts)
    # The fused session really fused; the plain one really did not.
    assert fused.stats["fused_batches"] >= 1
    assert fused.stats["fused_criteria"] >= 2
    assert plain.stats["fused_batches"] == 0
    # Saturation-miss accounting is identical: one per distinct cold
    # saturation either way.
    assert (
        fused.stats["saturation_misses"] == plain.stats["saturation_misses"]
    ), (seed, contexts)


@pytest.mark.smoke
def test_singleton_slice_many_fuses_only_when_forced():
    source = _source(2)
    auto = SlicingSession(source, kernel="csr")
    # Auto mode (pinned explicitly, so a REPRO_BATCH_SATURATION=on
    # lane doesn't flip it): one cold criterion is not worth fusing.
    auto.slice_many([("print", 0)], batch_saturation="auto", backend="thread")
    assert auto.stats["fused_batches"] == 0
    forced = SlicingSession(source, kernel="csr")
    forced.slice_many([("print", 0)], batch_saturation="on", backend="thread")
    assert forced.stats["fused_batches"] == 1
    assert forced.stats["fused_criteria"] == 1
    plain = SlicingSession(source, kernel="csr")
    reference = plain.slice(("print", 0))
    result = forced.slice(("print", 0))
    assert automaton_to_payload(result.a6) == automaton_to_payload(reference.a6)
    assert result.closure_elems() == reference.closure_elems()


@pytest.mark.smoke
def test_object_kernel_sessions_never_fuse():
    session = SlicingSession(_source(3), kernel="object")
    session.slice_many(_criteria(session), batch_saturation="on")
    assert session.stats["fused_batches"] == 0


def test_persisted_sats_bytes_identical(tmp_path):
    """The artifacts a fused batch files in the store are the same
    bytes the sequential path would have filed."""
    from repro.store import SliceStore

    source = _source(4)
    fused = SlicingSession(
        source, store=SliceStore(str(tmp_path / "fused")), kernel="csr"
    )
    plain = SlicingSession(
        source, store=SliceStore(str(tmp_path / "plain")), kernel="csr"
    )
    criteria = _criteria(fused)
    fused.slice_many(criteria, batch_saturation="on")
    plain.slice_many(criteria, batch_saturation="off")

    def sat_bytes(root):
        found = {}
        sats = os.path.join(root, "__sats__")
        for name in sorted(os.listdir(sats)):
            if not name.endswith(".slc") or name.startswith("idx-"):
                continue
            with open(os.path.join(sats, name), "rb") as handle:
                found[name] = handle.read()
        return found

    fused_bytes = sat_bytes(str(tmp_path / "fused"))
    plain_bytes = sat_bytes(str(tmp_path / "plain"))
    assert fused_bytes and fused_bytes == plain_bytes


def test_warm_store_batch_skips_the_fused_pass(tmp_path):
    from repro.store import SliceStore

    source = _source(5)
    cache = str(tmp_path / "cache")
    writer = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    criteria = _criteria(writer)
    writer.slice_many(criteria, batch_saturation="on", backend="thread")
    assert writer.stats["fused_batches"] == 1

    reader = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    reference = [
        (r.closure_elems(), automaton_to_payload(r.a6))
        for r in writer.slice_many(criteria, backend="thread")
    ]
    warm = reader.slice_many(criteria, batch_saturation="on", backend="thread")
    assert [
        (r.closure_elems(), automaton_to_payload(r.a6)) for r in warm
    ] == reference
    # Every criterion's rendered result was persisted, so no saturation
    # ran — fused or otherwise.
    assert reader.stats["fused_batches"] == 0
    assert reader.stats["saturation_misses"] == 0
    assert reader.stats["sat_persist_misses"] == 0


def test_sats_warm_batch_loads_instead_of_saturating(tmp_path):
    """Rendered results evicted but ``__sats__`` artifacts intact: the
    fused pass claims the criteria, then serves every one from the
    persisted automata without a single kernel pop."""
    from repro.store import SliceStore

    source = _source(6)
    cache = str(tmp_path / "cache")
    writer = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    criteria = _criteria(writer)
    writer.slice_many(criteria, batch_saturation="on", backend="thread")
    reference = [
        (r.closure_elems(), automaton_to_payload(r.a6))
        for r in writer.slice_many(criteria, backend="thread")
    ]
    # Drop the rendered slices; keep the saturation artifacts.
    src_dir = os.path.join(cache, writer.source_hash)
    removed = 0
    for name in os.listdir(src_dir):
        if name.startswith("slice-"):
            os.unlink(os.path.join(src_dir, name))
            removed += 1
    assert removed == len(set(criteria))

    reader = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    warm = reader.slice_many(criteria, batch_saturation="on", backend="thread")
    assert [
        (r.closure_elems(), automaton_to_payload(r.a6)) for r in warm
    ] == reference
    # N criteria plus the reachable-configs poststar, all persisted.
    n_sats = len(set(criteria)) + 1
    assert reader.stats["sat_persist_hits"] == n_sats
    assert reader.stats["sat_persist_misses"] == 0
    assert reader.stats["kernel_worklist_pops"] == 0


def test_remove_features_many_matches_sequential():
    source = scaled_wc_source(4)
    features = ["count_line", "count_word", "count_char"]
    fused = SlicingSession(source, kernel="csr")
    plain = SlicingSession(source, kernel="csr")
    fused_results = fused.remove_features_many(features, batch_saturation="on")
    plain_results = [plain.remove_feature(f) for f in features]
    assert fused.stats["fused_batches"] == 1
    assert fused.stats["fused_criteria"] == len(features)
    for feature, f, p in zip(features, fused_results, plain_results):
        assert automaton_to_payload(f.a1) == automaton_to_payload(p.a1), feature
        assert f.footprint == p.footprint, feature
    assert _sat_digests(fused) == _sat_digests(plain)


@pytest.mark.smoke
def test_update_source_invalidates_batch_state():
    """An edit between the fused pass and the slice computes must not
    leak stale query automata or a stale compiled PDS."""
    base = scaled_wc_source(3)
    session = SlicingSession(base, kernel="csr")
    session.slice_many(_criteria(session), batch_saturation="on")
    compiled_before = session._compiled
    # A constant edit is layout-fast-equivalent: the front half (and so
    # the compiled PDS) is legitimately reused — a compile cache hit.
    session.update_source(base.replace("c == 32", "c == 33"))
    assert not session._batch_queries
    assert session._compiled is compiled_before
    # A structural edit rebuilds the front half; the stale compile must
    # be replaced, not served.
    edited = base.replace(
        "chars = chars + 1;", "chars = chars + 1;\n  chars = chars + 0;"
    )
    session.update_source(edited)
    assert not session._batch_queries
    assert session._compiled is not None
    assert session._compiled is not compiled_before
    cold = SlicingSession(edited, kernel="csr")
    assert pretty(session.executable("prints").program) == pretty(
        cold.executable("prints").program
    )


# -- gating ------------------------------------------------------------------------


@pytest.mark.smoke
def test_resolve_batch_modes(monkeypatch):
    monkeypatch.delenv(kernelcfg.BATCH_ENV_VAR, raising=False)
    assert kernelcfg.resolve_batch(None) == kernelcfg.BATCH_AUTO
    assert kernelcfg.resolve_batch("on") == kernelcfg.BATCH_ON
    assert kernelcfg.resolve_batch("off") == kernelcfg.BATCH_OFF
    monkeypatch.setenv(kernelcfg.BATCH_ENV_VAR, "on")
    assert kernelcfg.resolve_batch(None) == kernelcfg.BATCH_ON
    assert kernelcfg.resolve_batch("off") == kernelcfg.BATCH_OFF
    with pytest.raises(ValueError):
        kernelcfg.resolve_batch("sometimes")
    monkeypatch.setenv(kernelcfg.BATCH_ENV_VAR, "sideways")
    with pytest.raises(ValueError):
        kernelcfg.resolve_batch(None)


@pytest.mark.smoke
def test_resolve_backend_modes(monkeypatch):
    monkeypatch.delenv(kernelcfg.BACKEND_ENV_VAR, raising=False)
    assert kernelcfg.resolve_backend(None) == kernelcfg.THREAD
    assert kernelcfg.resolve_backend("process") == kernelcfg.PROCESS
    monkeypatch.setenv(kernelcfg.BACKEND_ENV_VAR, "process")
    assert kernelcfg.resolve_backend(None) == kernelcfg.PROCESS
    assert kernelcfg.resolve_backend("thread") == kernelcfg.THREAD
    with pytest.raises(ValueError):
        kernelcfg.resolve_backend("greenlet")
    monkeypatch.setenv(kernelcfg.BACKEND_ENV_VAR, "fiber")
    with pytest.raises(ValueError):
        kernelcfg.resolve_backend(None)


def test_backend_env_var_routes_slice_many(monkeypatch):
    source = _source(7)
    monkeypatch.setenv(kernelcfg.BACKEND_ENV_VAR, "process")
    monkeypatch.setenv(kernelcfg.BATCH_ENV_VAR, "on")
    via_env = SlicingSession(source, kernel="csr")
    results = via_env.slice_many(_criteria(via_env))
    # The env knob sent the batch through the process tier...
    assert via_env.stats["fused_process_batches"] >= 1
    assert via_env.stats["fused_batches"] == 0
    # ...with results identical to an explicit thread-backend run.
    monkeypatch.delenv(kernelcfg.BACKEND_ENV_VAR)
    threaded = SlicingSession(source, kernel="csr")
    expected = threaded.slice_many(_criteria(threaded), backend="thread")
    assert [r.version_counts() for r in results] == [
        r.version_counts() for r in expected
    ]


@pytest.mark.smoke
def test_env_var_gates_slice_many(monkeypatch):
    source = _source(7)
    monkeypatch.setenv(kernelcfg.BATCH_ENV_VAR, "off")
    off = SlicingSession(source, kernel="csr")
    off.slice_many(_criteria(off), backend="thread")
    assert off.stats["fused_batches"] == 0
    monkeypatch.setenv(kernelcfg.BATCH_ENV_VAR, "on")
    on = SlicingSession(source, kernel="csr")
    on.slice_many(_criteria(on), backend="thread")
    assert on.stats["fused_batches"] == 1


@pytest.mark.smoke
def test_compile_cache_counters():
    session = SlicingSession(_source(8), kernel="csr")
    assert session.stats["kernel_compile_misses"] == 1  # _hold_compiled
    session.slice_many(_criteria(session), batch_saturation="on", backend="thread")
    stats = session.stats
    assert stats["kernel_compile_misses"] == 1
    assert stats["kernel_compile_hits"] >= 1
