"""Kernel-equivalence differential testing: ``csr`` vs ``object``.

The CSR kernel's contract is *byte identity*: every query answered by a
``kernel="csr"`` session must be indistinguishable — rendered program
text, closure elements, version counts, serialized automata, saturation
artifacts and their ``__sats__`` digests — from the same query under the
default object kernel.  This suite pins that contract on the same two
corpora the incremental layer is pinned by:

* the 26-program differential corpus
  (:mod:`tests.test_differential_baselines`'s generator settings):
  slices over several criteria, a feature removal, and the memoized
  saturation artifacts, each compared field by field across kernels;
* the mutation corpus (:mod:`tests.test_incremental_differential`'s
  generated single-procedure edits): a ``csr`` session driven through
  ``update_source`` must keep serving results byte-identical to an
  *object* session driven through the same edit — the incremental
  layer's invalidation logic is kernel-blind and must stay that way.

A meta-test pins the corpus sizes so neither lane can silently shrink.
"""

import random

import pytest

from repro.engine import SlicingSession
from repro.engine.canonical import stable_key_digest
from repro.fsa.serialize import automaton_to_payload
from repro.lang import parse, pretty
from repro.workloads.generator import GenConfig, generate_program

from tests.test_incremental_differential import MUTATORS

N_PROGRAMS = 26
MAX_CRITERIA = 4
MUTATION_SEEDS = range(10)


def _source(seed):
    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    return pretty(program)


def _criteria(session):
    prints = len(session.sdg.print_call_vertices())
    criteria = [("print", index) for index in range(min(prints, MAX_CRITERIA))]
    criteria.append("prints")
    return criteria


def _sat_digests(session):
    """Every memoized saturation artifact, as the store would file it:
    ``stable_key_digest(key) -> (kind, payload, footprint)``."""
    digests = {}
    with session._lock:
        futures = dict(session._futures)
    for (cache_kind, key), future in futures.items():
        if cache_kind != "saturation" or not future.done():
            continue
        artifact = future.result()
        digests[stable_key_digest(key)] = (
            artifact.kind,
            automaton_to_payload(artifact.automaton),
            artifact.footprint,
        )
    return digests


def _assert_sessions_identical(obj_session, csr_session, criteria, context=()):
    for criterion in criteria:
        obj_result = obj_session.slice(criterion)
        csr_result = csr_session.slice(criterion)
        tag = context + (criterion,)
        assert automaton_to_payload(obj_result.a1) == automaton_to_payload(
            csr_result.a1
        ), tag
        assert automaton_to_payload(obj_result.a6) == automaton_to_payload(
            csr_result.a6
        ), tag
        assert obj_result.closure_elems() == csr_result.closure_elems(), tag
        assert obj_result.version_counts() == csr_result.version_counts(), tag
        assert obj_result.footprint == csr_result.footprint, tag
        assert pretty(obj_session.executable(criterion).program) == pretty(
            csr_session.executable(criterion).program
        ), tag
    assert _sat_digests(obj_session) == _sat_digests(csr_session), context


def test_corpus_is_large_enough():
    assert N_PROGRAMS >= 26
    corpus = _mutation_corpus()
    assert len(corpus) >= 50


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_kernels_byte_identical_on_differential_corpus(seed):
    source = _source(seed)
    obj_session = SlicingSession(source, kernel="object")
    csr_session = SlicingSession(source, kernel="csr")
    assert obj_session.kernel == "object" and csr_session.kernel == "csr"

    _assert_sessions_identical(
        obj_session, csr_session, _criteria(obj_session), context=("seed%d" % seed,)
    )

    # The csr session really ran on the int kernel.
    stats = csr_session.stats
    assert stats["kernel_rules_compiled"] > 0
    assert stats["kernel_worklist_pops"] > 0
    assert obj_session.stats["kernel_rules_compiled"] == 0


@pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 5))
def test_feature_removal_byte_identical(seed):
    """Algorithm 2 (forward-cone Poststar + residual) across kernels,
    on a sample of the corpus."""
    source = _source(seed)
    obj_session = SlicingSession(source, kernel="object")
    csr_session = SlicingSession(source, kernel="csr")
    obj_removed = obj_session.remove_feature("print")
    csr_removed = csr_session.remove_feature("print")
    assert automaton_to_payload(obj_removed.a1) == automaton_to_payload(
        csr_removed.a1
    )
    assert obj_removed.footprint == csr_removed.footprint
    _raw, obj_clean = obj_session.remove_feature_cleaned("print")
    _raw, csr_clean = csr_session.remove_feature_cleaned("print")
    assert pretty(obj_clean.program) == pretty(csr_clean.program)
    assert _sat_digests(obj_session) == _sat_digests(csr_session)


# -- the mutation lane -------------------------------------------------------------


def _mutation_corpus():
    corpus = []
    for seed in MUTATION_SEEDS:
        base = _source(seed)
        for mutator in MUTATORS:
            rng = random.Random(1000 * seed + MUTATORS.index(mutator))
            edited = mutator(parse(base), rng)
            if edited is None or edited == base:
                continue
            corpus.append(("seed%d-%s" % (seed, mutator.__name__[7:]), base, edited))
    return corpus


MUTATION_CORPUS = _mutation_corpus()


@pytest.mark.parametrize(
    "label,base,edited",
    MUTATION_CORPUS,
    ids=[entry[0] for entry in MUTATION_CORPUS],
)
def test_incremental_updates_byte_identical_across_kernels(label, base, edited):
    obj_session = SlicingSession(base, kernel="object")
    csr_session = SlicingSession(base, kernel="csr")
    warm = _criteria(obj_session)
    for session in (obj_session, csr_session):
        session.slice_many(warm[:-1])

    obj_summary = obj_session.update_source(edited)
    csr_summary = csr_session.update_source(edited)
    # Invalidation decisions are a pure function of footprints, which
    # are kernel-independent — so the summaries must agree exactly.
    for field in (
        "procs_reused",
        "procs_rebuilt",
        "saturations_kept",
        "saturations_dropped",
        "results_kept",
        "results_dropped",
        "fast_path",
    ):
        assert obj_summary.get(field) == csr_summary.get(field), (label, field)

    _assert_sessions_identical(
        obj_session, csr_session, _criteria(obj_session), context=(label,)
    )
