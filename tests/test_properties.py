"""Property-based end-to-end tests over randomly generated programs.

These are the strongest checks in the suite: for arbitrary (terminating,
valid) TinyC programs, the whole pipeline must satisfy the paper's
correctness claims.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.control_dep import structural_control_dependence
from repro.core import (
    binkley_slice,
    executable_program,
    monovariant_program,
    reslice_check,
    specialization_slice,
)
from repro.core.criteria import as_query_view, empty_stack_criterion
from repro.fsa import language_equal
from repro.fsa.ops import is_reverse_deterministic
from repro.lang import ast_nodes as A
from repro.lang.interp import ExecutionLimitExceeded, run_program
from repro.pds import encode_sdg, prestar
from repro.sdg import CONTROL, VertexKind, backward_closure_slice, build_sdg
from repro.workloads.generator import GenConfig, generate_program

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

seeds = st.integers(min_value=0, max_value=10_000)


def build_random(seed, **kwargs):
    config = GenConfig(seed=seed, n_procs=kwargs.pop("n_procs", 5), **kwargs)
    program, info = generate_program(config)
    sdg = build_sdg(program, info)
    return program, info, sdg


def run_both(program, sliced, stmt_map, seed, trials=2, length=25):
    rng = random.Random(seed)
    for _ in range(trials):
        inputs = [rng.randint(-4, 9) for _ in range(length)]
        try:
            original = run_program(program, inputs, max_steps=2_000_000)
            new = run_program(sliced, inputs, max_steps=2_000_000)
        except ExecutionLimitExceeded:
            continue
        mapped = [(stmt_map.get(uid), vals) for uid, _f, vals in new.prints]
        expected = [(uid, vals) for uid, _f, vals in original.prints]
        assert mapped == expected


@settings(**SETTINGS)
@given(seed=seeds)
def test_specialization_slice_semantically_faithful(seed):
    program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = specialization_slice(sdg, criterion)
    executable = executable_program(result)
    run_both(program, executable.program, executable.stmt_map, seed)


@settings(**SETTINGS)
@given(seed=seeds)
def test_prestar_elems_match_hrb_closure(seed):
    _program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    encoding = encode_sdg(sdg)
    saturated = prestar(encoding.pds, empty_stack_criterion(encoding, criterion))
    main_criterion = {
        vid for vid in criterion if sdg.vertices[vid].proc == "main"
    }
    if main_criterion != criterion:
        return  # empty-stack criteria only make sense for main vertices
    assert encoding.elems(saturated) == backward_closure_slice(sdg, criterion)


@settings(**SETTINGS)
@given(seed=seeds)
def test_a6_invariants(seed):
    _program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = specialization_slice(sdg, criterion)
    if result.a6.finals:
        assert is_reverse_deterministic(result.a6)
    view = as_query_view(result.a1, result.encoding)
    assert language_equal(view, result.a6)


@settings(**SETTINGS)
@given(seed=seeds)
def test_soundness_no_elements_outside_closure(seed):
    _program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = specialization_slice(sdg, criterion)
    closure = result.closure_elems()
    assert set(result.map_back_vertex.values()) <= closure


@settings(**SETTINGS)
@given(seed=seeds)
def test_completeness_every_closure_element_covered(seed):
    _program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = specialization_slice(sdg, criterion)
    closure = result.closure_elems()
    assert set(result.map_back_vertex.values()) == closure


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=seeds)
def test_reslice_idempotent_on_random_programs(seed):
    _program, _info, sdg = build_random(seed, n_procs=4)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = specialization_slice(sdg, criterion)
    assert reslice_check(result)


@settings(**SETTINGS)
@given(seed=seeds)
def test_binkley_complete_and_faithful(seed):
    program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = binkley_slice(sdg, criterion)
    assert result.closure <= result.slice_set
    sliced = monovariant_program(sdg, result.slice_set)
    run_both(program, sliced.program, sliced.stmt_map, seed)


@settings(**SETTINGS)
@given(seed=seeds)
def test_structural_control_dependence_agrees(seed):
    """On generated programs (returns only in tail position, no exits),
    syntax-directed control dependence must equal the FOW result for
    statement/predicate/call vertices."""
    program, _info, sdg = build_random(seed)
    for proc in program.procs:
        entry = sdg.entry_vertex[proc.name]
        expected = structural_control_dependence(
            proc, lambda uid: sdg.vertex_of_stmt[uid], entry
        )
        got = set()
        for vid in sdg.proc_vertices[proc.name]:
            vertex = sdg.vertices[vid]
            if vertex.kind not in (
                VertexKind.STATEMENT,
                VertexKind.PREDICATE,
                VertexKind.CALL,
            ):
                continue
            for src in sdg.predecessors(vid, (CONTROL,)):
                src_vertex = sdg.vertices[src]
                if src_vertex.kind in (
                    VertexKind.ENTRY,
                    VertexKind.STATEMENT,
                    VertexKind.PREDICATE,
                    VertexKind.CALL,
                ):
                    got.add((src, vid))
        # Tail returns create no extra dependences, so the sets match
        # exactly for generated programs.
        assert got == expected


@settings(**SETTINGS)
@given(seed=seeds)
def test_specialization_never_exceeds_replication_bound(seed):
    """|R| >= |closure| and every replicated element belongs to a
    procedure with > 1 version."""
    _program, _info, sdg = build_random(seed)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    result = specialization_slice(sdg, criterion)
    closure = result.closure_elems()
    assert result.sdg.vertex_count() >= len(closure)
    copies = {}
    for orig in result.map_back_vertex.values():
        copies[orig] = copies.get(orig, 0) + 1
    versions = result.version_counts()
    for orig, count in copies.items():
        if count > 1:
            assert versions[sdg.vertices[orig].proc] > 1
