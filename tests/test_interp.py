"""Interpreter unit tests."""

import pytest

from repro.lang import check, parse
from repro.lang.interp import ExecutionLimitExceeded, Interpreter, run_program


pytestmark = pytest.mark.smoke


def run(source, inputs=(), max_steps=100_000):
    program = parse(source)
    check(program)
    return run_program(program, inputs, max_steps=max_steps)


def test_arithmetic_and_print():
    result = run('int main() { print("%d", 2 + 3 * 4); }')
    assert result.values == [14]


def test_division_semantics_truncate_toward_zero():
    result = run('int main() { print("%d %d %d %d", 7 / 2, -7 / 2, 7 % 2, -7 % 2); }')
    assert result.values == [3, -3, 1, -1]


def test_division_by_zero_is_total():
    result = run('int main() { print("%d %d", 5 / 0, 5 % 0); }')
    assert result.values == [0, 0]


def test_comparisons_produce_01():
    result = run('int main() { print("%d %d %d", 1 < 2, 2 < 1, 3 == 3); }')
    assert result.values == [1, 0, 1]


def test_logical_ops():
    result = run('int main() { print("%d %d %d", 2 && 3, 0 || 5, !7); }')
    assert result.values == [1, 1, 0]


def test_if_else_and_while():
    result = run(
        """
        int main() {
          int total = 0;
          int i = 0;
          while (i < 5) {
            if (i % 2 == 0) { total = total + i; }
            i = i + 1;
          }
          print("%d", total);
        }
        """
    )
    assert result.values == [6]


def test_globals_initialized():
    result = run('int g = 7; int h; int main() { print("%d %d", g, h); }')
    assert result.values == [7, 0]


def test_call_and_return():
    result = run(
        "int add(int a, int b) { return a + b; }"
        " int main() { int x = add(2, 3); print(\"%d\", x); }"
    )
    assert result.values == [5]


def test_missing_return_yields_zero():
    result = run(
        "int f() { int x = 1; } int main() { int r = f(); print(\"%d\", r); }"
    )
    assert result.values == [0]


def test_ref_parameters_alias_caller():
    result = run(
        """
        void bump(ref int x) { x = x + 1; }
        int main() { int v = 10; bump(v); bump(v); print("%d", v); }
        """
    )
    assert result.values == [12]


def test_recursion():
    result = run(
        """
        int fib(int n) {
          if (n < 2) { return n; }
          int a = fib(n - 1);
          int b = fib(n - 2);
          return a + b;
        }
        int main() { int r = fib(10); print("%d", r); }
        """
    )
    assert result.values == [55]


def test_input_stream_and_exhaustion():
    result = run(
        "int main() { int a = input(); int b = input(); int c = input(); print(\"%d %d %d\", a, b, c); }",
        inputs=[4, 5],
    )
    assert result.values == [4, 5, 0]


def test_exit_stops_program():
    result = run('int main() { print("%d", 1); exit(3); print("%d", 2); }')
    assert result.values == [1]
    assert result.exit_code == 3


def test_exit_from_callee_stops_everything():
    result = run(
        """
        void f() { exit(9); }
        int main() { f(); print("%d", 1); }
        """
    )
    assert result.values == []
    assert result.exit_code == 9


def test_function_pointers():
    result = run(
        """
        int two(int x) { return x * 2; }
        int three(int x) { return x * 3; }
        int main() {
          fnptr p;
          p = two;
          int a = p(5);
          p = three;
          int b = p(5);
          print("%d %d", a, b);
        }
        """
    )
    assert result.values == [10, 15]


def test_funcref_comparison():
    result = run(
        """
        void f() {}
        int main() { fnptr p; p = f; print("%d", p == f); }
        """
    )
    assert result.values == [1]


def test_uninitialized_fnptr_call_raises():
    with pytest.raises(RuntimeError):
        run("int main() { fnptr p; p(); }")


def test_step_limit():
    with pytest.raises(ExecutionLimitExceeded):
        run("int main() { while (1) { } }", max_steps=100)


def test_step_count_reported():
    result = run('int main() { print("%d", 1); }')
    assert result.steps >= 1


def test_prints_at_filters_by_uid():
    program = parse('int main() { print("%d", 1); print("%d", 2); }')
    check(program)
    stmts = program.proc("main").body.stmts
    result = Interpreter(program).run()
    only_first = result.prints_at([stmts[0].uid])
    assert only_first == [(stmts[0].uid, (1,))]


def test_render_with_format():
    result = run('int main() { print("v=%d!\\n", 5); }')
    assert result.render() == "v=5!\n"


def test_local_decl_reinitializes_in_loop():
    result = run(
        """
        int main() {
          int i = 0;
          while (i < 3) {
            int x;
            x = x + 1;
            print("%d", x);
            i = i + 1;
          }
        }
        """
    )
    # x is re-declared (and zeroed) each iteration.
    assert result.values == [1, 1, 1]
