"""Algorithm 1 end-to-end on the paper's figures: exact structural
checks of Fig. 1(b) and Fig. 2(b)."""

from repro.core import executable_program, specialization_slice
from repro.fsa.ops import is_reverse_deterministic
from repro.lang import ast_nodes as A
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig1, load_fig2


def stmt_labels(sdg, spec):
    return sorted(
        sdg.vertices[v].label
        for v in spec.orig_vertices
        if sdg.vertices[v].kind == "statement"
    )


def test_fig1_two_specializations_of_p():
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    assert result.version_counts() == {"p": 2, "main": 1}

    specs = result.specializations_of("p")
    bodies = {tuple(stmt_labels(sdg, spec)) for spec in specs}
    assert bodies == {("g2 = b",), ("g1 = a", "g2 = b")}


def test_fig1_call_bindings():
    """C1 and C3 bind to the one-parameter version; C2 to the
    two-parameter version (Fig. 1(b))."""
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    main_spec = result.specializations_of("main")[0]
    small = next(
        s for s in result.specializations_of("p") if len(stmt_labels(sdg, s)) == 1
    )
    large = next(
        s for s in result.specializations_of("p") if len(stmt_labels(sdg, s)) == 2
    )
    assert result.callee_name(main_spec, "C1") == small.name
    assert result.callee_name(main_spec, "C2") == large.name
    assert result.callee_name(main_spec, "C3") == small.name


def test_fig1_parameter_lists():
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    executable = executable_program(result)
    procs = {proc.name: proc for proc in executable.program.procs}
    p_specs = result.specializations_of("p")
    param_counts = sorted(len(procs[s.name].params) for s in p_specs)
    assert param_counts == [1, 2]
    one_param = next(s for s in p_specs if len(procs[s.name].params) == 1)
    assert procs[one_param.name].params[0].name == "b"


def test_fig1_semantics_preserved():
    program, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    executable = executable_program(result)
    original = run_program(program)
    sliced = run_program(executable.program)
    assert original.values == sliced.values == [5]


def test_fig1_a6_is_mrd_and_language_preserved():
    from repro.core.criteria import as_query_view
    from repro.fsa import language_equal

    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    assert is_reverse_deterministic(result.a6)
    view = as_query_view(result.a1, result.encoding)
    assert language_equal(view, result.a6)


def test_fig1_no_elements_outside_closure():
    """Soundness, Elems level: every vertex of R maps back to a closure
    slice element."""
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    closure = result.closure_elems()
    for new_vid, orig_vid in result.map_back_vertex.items():
        assert orig_vid in closure


def test_fig1_replication_count():
    """|R| = |closure| + replicated elements: p_1/p_2 share entry, b_in,
    g2 = b, g2_out."""
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    closure = result.closure_elems()
    assert result.sdg.vertex_count() == len(closure) + 4


def test_fig2_mutual_recursion():
    program, _i, sdg = load_fig2()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    counts = result.version_counts()
    assert counts == {"s": 2, "r": 2, "main": 1}

    executable = executable_program(result)
    text = pretty(executable.program)
    procs = {proc.name: proc for proc in executable.program.procs}
    r_specs = [s.name for s in result.specializations_of("r")]

    # Each r_i calls the *other* r_j: direct recursion became mutual.
    def called(proc):
        names = set()
        for stmt in A.walk_stmts(procs[proc].body):
            for expr in A.stmt_exprs(stmt):
                if isinstance(expr, A.CallExpr):
                    names.add(expr.callee)
        return names

    r1, r2 = r_specs
    assert r2 in called(r1) and r1 not in called(r1)
    assert r1 in called(r2) and r2 not in called(r2)

    # s split into a one-parameter 'a' version and a one-parameter 'b'
    # version.
    s_params = sorted(
        procs[s.name].params[0].name for s in result.specializations_of("s")
    )
    assert s_params == ["a", "b"]

    original = run_program(program)
    sliced = run_program(executable.program)
    assert original.values == sliced.values == [1]


def test_fig2_r_variants_have_swapped_call_patterns():
    _p, _i, sdg = load_fig2()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    executable = executable_program(result)
    procs = {proc.name: proc for proc in executable.program.procs}
    r_specs = [s.name for s in result.specializations_of("r")]

    def call_sequence(proc):
        calls = []
        for stmt in A.walk_stmts(procs[proc].body):
            for expr in A.stmt_exprs(stmt):
                if isinstance(expr, A.CallExpr):
                    calls.append(expr.callee)
        return calls

    seq1 = call_sequence(r_specs[0])
    seq2 = call_sequence(r_specs[1])
    # Each makes three calls: s_x, r_other, s_y with x != y.
    assert len(seq1) == len(seq2) == 3
    assert seq1[0] != seq1[2]
    assert seq2[0] != seq2[2]
    # The two variants use the two s versions in opposite orders.
    assert seq1[0] == seq2[2] and seq1[2] == seq2[0]


def test_reachable_contexts_default_matches_empty_for_main_criterion():
    """For criteria in main, 'reachable' and 'empty' contexts coincide."""
    _p, _i, sdg = load_fig1()
    criterion = sdg.print_criterion()
    by_reachable = specialization_slice(sdg, criterion, contexts="reachable")
    by_empty = specialization_slice(sdg, criterion, contexts="empty")
    assert by_reachable.version_counts() == by_empty.version_counts()
    assert by_reachable.sdg.vertex_count() == by_empty.sdg.vertex_count()


def test_empty_criterion_gives_empty_slice():
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, [], contexts="empty")
    assert result.sdg.vertex_count() == 0
    assert result.version_counts() == {"p": 0, "main": 0}
    executable = executable_program(result)
    assert run_program(executable.program).values == []
