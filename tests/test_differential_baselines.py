"""Differential testing against the Weiser baseline over the generator
suite.

Two independent implementations bound each polyvariant slice:

* **Containment** — the specialization slice's mapped-back vertex set
  (``MC`` applied to every vertex of ``R``) must be contained in the
  Weiser slice for the same criterion.  Weiser's algorithm
  (:mod:`repro.core.weiser`) is context-insensitive backward
  reachability with indivisible call sites — a strict over-
  approximation of the closure slice computed via the PDS route, and a
  completely independent code path (no automata, no saturation).
* **Execution equivalence** — the rendered polyvariant slice must print
  exactly the criterion print's values, in order, on shared random
  inputs (Weiser's correctness condition under :mod:`repro.lang.interp`).

Every program in a 26-seed generator sample is checked against every
print-statement vertex criterion, exercising the
:class:`repro.engine.SlicingSession` batch path along the way.
"""

import random

import pytest

from repro.core import weiser_slice
from repro.engine import SlicingSession
from repro.lang import pretty
from repro.lang.interp import ExecutionLimitExceeded, run_program
from repro.workloads.generator import GenConfig, generate_program

N_PROGRAMS = 26
#: cap on vertex criteria checked per program — keeps the whole harness
#: a small multiple of the generator-suite property tests' runtime.
MAX_CRITERIA = 4


def _session_for_seed(seed):
    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    return SlicingSession(pretty(program))


def _check_criterion_prints(session, executable, criterion_uid, seed):
    """The slice's print output must equal the original's output at the
    criterion print statement, on shared inputs."""
    rng = random.Random(seed)
    compared = 0
    for _ in range(2):
        inputs = [rng.randint(-4, 9) for _ in range(20)]
        try:
            original = run_program(session.program, inputs, max_steps=2_000_000)
            sliced = run_program(executable.program, inputs, max_steps=2_000_000)
        except ExecutionLimitExceeded:
            continue
        mapped = [
            (executable.stmt_map.get(uid), values)
            for uid, _fmt, values in sliced.prints
        ]
        # A backward slice from one print's parameters can keep no other
        # print (prints produce no values for anything to depend on).
        assert all(uid == criterion_uid for uid, _values in mapped)
        expected = [
            (uid, values)
            for uid, _fmt, values in original.prints
            if uid == criterion_uid
        ]
        assert mapped == expected
        compared += 1
    return compared


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_poly_slice_contained_in_weiser_and_faithful(seed):
    session = _session_for_seed(seed)
    sdg = session.sdg
    prints = sdg.print_call_vertices()
    if not prints:
        pytest.skip("generated program has no print statements")

    indices = range(min(len(prints), MAX_CRITERIA))
    criteria = [("print", index) for index in indices]
    results = session.slice_many(criteria)
    reachable_elems = session.encoding.elems(session.reachable_configs())

    for index, poly in zip(indices, results):
        criterion_vids = sdg.print_criterion([prints[index]])
        weiser = weiser_slice(sdg, criterion_vids)
        mapped_back = set(poly.map_back_vertex.values())
        assert mapped_back <= weiser.slice_set, (
            "seed %d print %d: polyvariant slice escapes the Weiser slice"
            % (seed, index)
        )
        if not criterion_vids & reachable_elems:
            # A print in dead code (e.g. a procedure main never calls)
            # has no realizable context: the reachable-contexts slice is
            # correctly empty, and there is nothing to execute.
            assert not poly.pdgs
            continue
        # A reachable criterion is always in its own slice.
        assert criterion_vids <= mapped_back

        executable = session.executable(("print", index))
        criterion_uid = sdg.vertices[prints[index]].stmt_uid
        _check_criterion_prints(session, executable, criterion_uid, seed)


def test_differential_sample_is_large_enough():
    """The harness must cover at least 25 generated programs (the
    acceptance floor for this differential suite)."""
    assert N_PROGRAMS >= 25


#: generator seeds re-checked through the persistent store (a subset:
#: the point is store fidelity, not re-running the whole harness).
STORE_SEEDS = (0, 3, 7, 11, 19)


@pytest.mark.parametrize("seed", STORE_SEEDS)
def test_store_served_results_byte_identical(seed, tmp_path):
    """The differential harness with the store enabled: results served
    from disk must be byte-identical to fresh computation — same
    rendered program text, same mapped-back vertex sets, same version
    counts — and the warm session must do no saturation work."""
    from repro.store import SliceStore

    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    source = pretty(program)
    cache = str(tmp_path / "cache")

    fresh = SlicingSession(source)  # no store: the reference computation
    writer = SlicingSession(source, store=SliceStore(cache))  # fills the store
    reader = SlicingSession(source, store=SliceStore(cache))  # serves from it
    assert reader.stats["front_half_from_store"] is True

    prints = fresh.sdg.print_call_vertices()
    if not prints:
        pytest.skip("generated program has no print statements")
    criteria = [("print", index) for index in range(min(len(prints), MAX_CRITERIA))]

    fresh_results = fresh.slice_many(criteria)
    writer.slice_many(criteria)
    stored_results = reader.slice_many(criteria)

    stats = reader.stats
    assert stats["persist_hits"] == len(criteria)
    assert stats["saturation_misses"] == 0 and stats["saturation_hits"] == 0

    for criterion, a, b in zip(criteria, fresh_results, stored_results):
        assert a.version_counts() == b.version_counts()
        assert a.closure_elems() == b.closure_elems()
        assert set(a.map_back_vertex.values()) == set(b.map_back_vertex.values())
        assert pretty(fresh.executable(criterion).program) == pretty(
            reader.executable(criterion).program
        )


def _delete_result_entries(cache, table="slice"):
    """Remove the persisted per-criterion results (but nothing else),
    so a warm session must recompute them — through whatever
    saturations the ``__sats__`` table still holds."""
    import glob
    import os

    removed = 0
    for path in glob.glob(os.path.join(cache, "*", "%s-*.slc" % table)):
        os.unlink(path)
        removed += 1
    return removed


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_sats_served_results_byte_identical(seed, tmp_path):
    """The differential harness for the ``__sats__`` table, over the
    full 26-program suite: with the persisted *results* deleted, a
    fresh session must recompute every slice through the persisted
    saturation artifacts — skipping Poststar entirely and loading the
    Prestar siblings — and the recomputed results must be
    byte-identical to a storeless cold session's."""
    from repro.store import SliceStore

    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    source = pretty(program)
    cache = str(tmp_path / "cache")

    fresh = SlicingSession(source)  # the storeless reference
    prints = fresh.sdg.print_call_vertices()
    if not prints:
        pytest.skip("generated program has no print statements")
    criteria = [("print", index) for index in range(min(len(prints), 2))]

    # backend pinned: the sat_persist_* assertions below are about the
    # in-parent artifact-load path; on the process backend the loads
    # (and their counters) happen inside pool workers instead.
    writer = SlicingSession(source, store=SliceStore(cache))
    writer.slice_many(criteria, backend="thread")
    assert _delete_result_entries(cache) == len(criteria)

    reader = SlicingSession(source, store=SliceStore(cache))
    fresh_results = fresh.slice_many(criteria, backend="thread")
    stored_results = reader.slice_many(criteria, backend="thread")

    stats = reader.stats
    assert stats["persist_hits"] == 0  # the results really were gone
    # Shared Poststar + one Prestar per criterion, all loaded: the
    # reader did zero saturation work of its own.
    assert stats["sat_persist_hits"] == len(criteria) + 1
    assert stats["sat_persist_misses"] == 0

    for criterion, a, b in zip(criteria, fresh_results, stored_results):
        assert a.version_counts() == b.version_counts()
        assert a.closure_elems() == b.closure_elems()
        assert set(a.map_back_vertex.values()) == set(b.map_back_vertex.values())
        assert pretty(fresh.executable(criterion).program) == pretty(
            reader.executable(criterion).program
        )
