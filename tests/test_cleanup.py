"""Useless-code-elimination tests (§7's suggested post-pass)."""

from repro.core import remove_feature
from repro.core.cleanup import clean_feature_removal, useless_code_elimination
from repro.lang import ast_nodes as A
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig16


def test_fig16_cleanup_removes_mult():
    """§7: after removing the product feature, the residual mult
    specialization and its call are useless; the cleanup pass drops
    them."""
    program, _info, sdg = load_fig16()
    prod_decl = next(
        s
        for s in A.walk_stmts(program.proc("main").body)
        if isinstance(s, A.LocalDecl) and s.name == "prod"
    )
    result = remove_feature(
        sdg, [sdg.vertex_of_stmt[prod_decl.uid]], contexts="empty"
    )
    raw, cleaned = clean_feature_removal(result)

    raw_text = pretty(raw.program)
    cleaned_text = pretty(cleaned.program)
    assert "mult" in raw_text  # the paper's pre-cleanup residue
    assert "mult" not in cleaned_text  # gone after cleanup
    assert "add" in cleaned_text  # still needed for the sum

    original = run_program(program, max_steps=5_000_000)
    final = run_program(cleaned.program, max_steps=5_000_000)
    assert final.values == [original.values[0]]
    assert final.steps < original.steps


def test_cleanup_is_noop_on_minimal_program():
    program = parse(
        """
        int g;
        int main() {
          g = input();
          print("%d", g);
        }
        """
    )
    check(program)
    cleaned = useless_code_elimination(program)
    assert run_program(cleaned.program, [7]).values == [7]
    # Nothing to remove: statement count is unchanged.
    count = lambda p: sum(1 for proc in p.procs for _ in A.walk_stmts(proc.body))
    assert count(cleaned.program) == count(program)


def test_cleanup_drops_dead_procedure():
    program = parse(
        """
        int g; int junk;
        void pointless(int v) { junk = v; }
        int main() {
          g = 2;
          pointless(5);
          print("%d", g);
        }
        """
    )
    check(program)
    cleaned = useless_code_elimination(program)
    text = pretty(cleaned.program)
    assert "pointless" not in text
    assert run_program(cleaned.program).values == [2]


def test_cleanup_keeps_exit_behaviour():
    program = parse(
        """
        int g;
        int main() {
          int x = input();
          if (x < 0) { exit(1); }
          g = 3;
          print("%d", g);
        }
        """
    )
    check(program)
    cleaned = useless_code_elimination(program)
    for inputs in ([-5], [5]):
        original = run_program(program, inputs)
        final = run_program(cleaned.program, inputs)
        assert original.values == final.values
        assert original.exit_code == final.exit_code


def test_cleanup_of_unobservable_program():
    program = parse("int g; int main() { g = 1; return 0; }")
    check(program)
    cleaned = useless_code_elimination(program)
    assert run_program(cleaned.program).values == []


def test_composed_stmt_map():
    program, _info, sdg = load_fig16()
    prod_decl = next(
        s
        for s in A.walk_stmts(program.proc("main").body)
        if isinstance(s, A.LocalDecl) and s.name == "prod"
    )
    result = remove_feature(
        sdg, [sdg.vertex_of_stmt[prod_decl.uid]], contexts="empty"
    )
    _raw, cleaned = clean_feature_removal(result)
    original_uids = {
        s.uid for proc in program.procs for s in A.walk_stmts(proc.body)
    }
    for new_uid, orig_uid in cleaned.stmt_map.items():
        assert orig_uid in original_uids
