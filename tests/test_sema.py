"""Semantic-analysis unit tests."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.sema import check


def check_source(source):
    program = parse(source)
    return program, check(program)


def expect_error(source, fragment):
    with pytest.raises(SemanticError) as info:
        check_source(source)
    assert fragment in str(info.value)


def test_minimal_valid_program():
    _program, info = check_source("int main() { return 0; }")
    assert "main" in info.procs


def test_missing_main():
    expect_error("void f() {}", "main")


def test_main_with_params_rejected():
    expect_error("int main(int a) { return 0; }", "main")


def test_undeclared_variable():
    expect_error("int main() { x = 1; }", "undeclared")


def test_undeclared_in_expression():
    expect_error("int main() { int x = y; }", "undeclared")


def test_duplicate_global():
    expect_error("int g; int g; int main() {}", "duplicate")


def test_duplicate_local():
    expect_error("int main() { int x; int x; }", "duplicate")


def test_duplicate_param():
    expect_error("void f(int a, int a) {} int main() {}", "duplicate")


def test_local_shadows_global_rejected():
    expect_error("int g; int main() { int g; }", "shadows")


def test_param_shadows_global_rejected():
    expect_error("int g; void f(int g) {} int main() {}", "shadows")


def test_call_arity_checked():
    expect_error("void f(int a) {} int main() { f(); }", "argument")


def test_nested_call_rejected():
    expect_error(
        "int f() { return 1; } int main() { int x = f() + 1; }",
        "statement or entire RHS",
    )


def test_nested_input_rejected():
    expect_error("int main() { int x = input() + 1; }", "entire RHS")


def test_void_used_as_value():
    expect_error("void f() {} int main() { int x = f(); }", "void")


def test_void_return_with_value():
    expect_error("void f() { return 3; } int main() {}", "returns a value")


def test_int_return_without_value():
    expect_error("int f() { return; } int main() {}", "returns no value")


def test_ref_argument_must_be_variable():
    expect_error(
        "void f(ref int a) {} int main() { f(1 + 2); }", "must be a variable"
    )


def test_ref_argument_global_rejected():
    expect_error(
        "int g; void f(ref int a) {} int main() { f(g); }", "passed by reference"
    )


def test_ref_argument_aliasing_rejected():
    expect_error(
        "void f(ref int a, ref int b) {} int main() { int x; f(x, x); }",
        "twice",
    )


def test_ref_argument_locals_ok():
    check_source("void f(ref int a, ref int b) { a = b; } int main() { int x; int y; f(x, y); }")


def test_procedure_name_as_value_becomes_funcref():
    program, info = check_source(
        "void f() {} int main() { fnptr p; p = f; }"
    )
    assign = program.proc("main").body.stmts[1]
    assert isinstance(assign.expr, A.FuncRef)


def test_indirect_call_marked():
    program, info = check_source(
        "void f(int a) {} int main() { fnptr p; p = f; p(1); }"
    )
    call = program.proc("main").body.stmts[2].call
    assert call.is_indirect
    assert info.has_indirect_calls


def test_fnptr_points_to_direct():
    _program, info = check_source(
        "void f() {} void g() {} int main() { fnptr p; p = f; p = g; p(); }"
    )
    assert info.may_point_to("main", "p") == {"f", "g"}


def test_fnptr_points_to_through_copy():
    _program, info = check_source(
        "void f() {} int main() { fnptr p; fnptr q; p = f; q = p; q(); }"
    )
    assert info.may_point_to("main", "q") == {"f"}


def test_fnptr_points_to_through_param():
    _program, info = check_source(
        """
        void f() {}
        void g() {}
        void call_it(fnptr h) { h(); }
        int main() { call_it(f); call_it(g); }
        """
    )
    assert info.may_point_to("call_it", "h") == {"f", "g"}


def test_fnptr_global_initializer():
    _program, info = check_source(
        "void f() {} fnptr p = &f; int main() { p(); }"
    )
    assert info.may_point_to("main", "p") == {"f"}


def test_unknown_procedure_called():
    expect_error("int main() { nosuch(); }", "unknown")


def test_unknown_funcref():
    expect_error("int main() { fnptr p; p = &nosuch; }", "unknown procedure")
