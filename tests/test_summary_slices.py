"""Summary-edge and closure-slicing tests against the paper's Eqn. (2)."""

from repro.lang import check, parse
from repro.sdg import (
    SUMMARY,
    VertexKind,
    backward_closure_slice,
    backward_reach,
    build_sdg,
    forward_closure_slice,
)
from repro.workloads.paper_figures import load_fig1, load_fig2


def build(source):
    program = parse(source)
    info = check(program)
    return build_sdg(program, info)


def labels(sdg, vids, proc=None):
    out = set()
    for vid in vids:
        vertex = sdg.vertices[vid]
        if proc is None or vertex.proc == proc:
            out.add((vertex.proc, vertex.kind, vertex.label))
    return out


def test_summary_edge_exists_for_flowthrough():
    sdg = build(
        "int id(int a) { return a; } int main() { int x = id(7); print(\"%d\", x); }"
    )
    site = list(sdg.call_sites.values())[0]
    ai = site.actual_ins[("param", 0)]
    ao = site.actual_outs[("ret",)]
    assert sdg.has_edge(ai, ao, SUMMARY)


def test_no_summary_edge_when_no_flow():
    sdg = build(
        "int ignore(int a) { return 0; } int main() { int x = ignore(7); print(\"%d\", x); }"
    )
    site = list(sdg.call_sites.values())[0]
    ai = site.actual_ins[("param", 0)]
    ao = site.actual_outs[("ret",)]
    assert not sdg.has_edge(ai, ao, SUMMARY)


def test_transitive_summary_through_two_levels():
    sdg = build(
        """
        int inner(int a) { return a + 1; }
        int outer(int b) { int r = inner(b); return r; }
        int main() { int x = outer(3); print("%d", x); }
        """
    )
    outer_site = next(s for s in sdg.call_sites.values() if s.callee == "outer")
    assert sdg.has_edge(
        outer_site.actual_ins[("param", 0)],
        outer_site.actual_outs[("ret",)],
        SUMMARY,
    )


def test_recursive_summary_edges_terminate():
    _p, _i, sdg = load_fig2()
    # r's call sites carry summaries from k to the globals it may mod.
    r_sites = [s for s in sdg.call_sites.values() if s.callee == "r"]
    assert r_sites  # computed without divergence


def test_fig1_closure_slice_matches_eqn2():
    """The closure slice of Fig. 1(a) w.r.t. the print's actuals is the
    element set of Eqn. (2)."""
    _p, _i, sdg = load_fig1()
    slice_set = backward_closure_slice(sdg, sdg.print_criterion())
    got = labels(sdg, slice_set, proc="p")
    expected_p = {
        ("p", VertexKind.ENTRY, "enter p"),
        ("p", VertexKind.FORMAL_IN, "a_in"),
        ("p", VertexKind.FORMAL_IN, "b_in"),
        ("p", VertexKind.STATEMENT, "g1 = a"),
        ("p", VertexKind.STATEMENT, "g2 = b"),
        ("p", VertexKind.FORMAL_OUT, "g1_out"),
        ("p", VertexKind.FORMAL_OUT, "g2_out"),
    }
    assert got == expected_p
    # g2 = 100 and g3 = g2 excluded; 21 elements total (Eqn. 2).
    assert len(slice_set) == 21


def test_context_sensitivity_beats_plain_reachability():
    """Context-insensitive backward reach must be a (strict, here)
    superset of the HRB closure slice."""
    _p, _i, sdg = load_fig1()
    criterion = sdg.print_criterion()
    closure = backward_closure_slice(sdg, criterion)
    reach = backward_reach(sdg, criterion)
    assert closure <= reach
    assert closure != reach


def test_forward_slice_basic():
    sdg = build(
        """
        int g;
        int main() {
          g = 1;
          int a = g + 1;
          int b = 2;
          print("%d %d", a, b);
        }
        """
    )
    seed = next(v.vid for v in sdg.vertices.values() if v.label == "g = 1")
    forward = forward_closure_slice(sdg, [seed])
    forward_labels = {sdg.vertices[v].label for v in forward}
    assert "int a = g + 1" in forward_labels
    assert "int b = 2" not in forward_labels


def test_forward_slice_descends_into_callees():
    sdg = build(
        """
        int g;
        void use() { int x = g; print("%d", x); }
        int main() { g = 5; use(); }
        """
    )
    seed = next(v.vid for v in sdg.vertices.values() if v.label == "g = 5")
    forward = forward_closure_slice(sdg, [seed])
    forward_labels = {sdg.vertices[v].label for v in forward}
    assert "int x = g" in forward_labels


def test_slice_of_empty_criterion():
    _p, _i, sdg = load_fig1()
    assert backward_closure_slice(sdg, set()) == set()
