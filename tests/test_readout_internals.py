"""Read-out internals: invariant enforcement and result accessors."""

import pytest

from repro.core import specialization_slice
from repro.core.readout import ReadoutError, read_out_sdg
from repro.fsa import FiniteAutomaton
from repro.pds import encode_sdg
from repro.workloads.paper_figures import load_fig1


def fig1_result():
    _p, _i, sdg = load_fig1()
    return sdg, specialization_slice(sdg, sdg.print_criterion(), contexts="empty")


def test_stats_fields_present():
    _sdg, result = fig1_result()
    for key in (
        "prestar_seconds",
        "automaton_seconds",
        "readout_seconds",
        "total_seconds",
        "a1_states",
        "a6_states",
        "determinize_input_states",
        "determinize_output_states",
    ):
        assert key in result.stats


def test_specializations_of_unknown_proc_empty():
    _sdg, result = fig1_result()
    assert result.specializations_of("nonexistent") == []


def test_callee_name_for_unbound_site():
    _sdg, result = fig1_result()
    main_spec = result.specializations_of("main")[0]
    assert result.callee_name(main_spec, "C999") is None


def test_readout_rejects_multi_initial():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    bogus = FiniteAutomaton(initials=["a", "b"], finals=["f"])
    vid = next(iter(sdg.vertices))
    bogus.add_transition("a", vid, "f")
    bogus.add_transition("b", vid, "f")
    with pytest.raises(ReadoutError):
        read_out_sdg(sdg, bogus, encoding)


def test_readout_rejects_mixed_procedures():
    """A (tampered) partition element containing vertices of two
    procedures must be rejected."""
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    bogus = FiniteAutomaton(initials=["q0"], finals=["f"])
    main_vid = sdg.entry_vertex["main"]
    p_vid = sdg.entry_vertex["p"]
    bogus.add_transition("q0", main_vid, "f")
    bogus.add_transition("q0", p_vid, "f")
    with pytest.raises(ReadoutError):
        read_out_sdg(sdg, bogus, encoding)


def test_readout_rejects_site_symbol_from_initial():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    bogus = FiniteAutomaton(initials=["q0"], finals=["f"])
    bogus.add_transition("q0", "C1", "f")
    with pytest.raises(ReadoutError):
        read_out_sdg(sdg, bogus, encoding)


def test_readout_of_empty_automaton():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    empty = FiniteAutomaton()
    r_sdg, pdgs, bindings, mapv, maps = read_out_sdg(sdg, empty, encoding)
    assert r_sdg.vertex_count() == 0
    assert pdgs == {} and bindings == {}


def test_result_sdg_has_site_bookkeeping():
    _sdg, result = fig1_result()
    r = result.sdg
    # Every specialized call site is registered on both ends.
    for label, site in r.call_sites.items():
        assert label in r.sites_in_proc[site.caller]
        assert label in r.sites_on_proc[site.callee]
        assert r.vertices[site.call_vertex].site_label == label


def test_map_back_is_injective_per_spec():
    _sdg, result = fig1_result()
    for spec in result.pdgs.values():
        new_vids = list(spec.vertex_map.values())
        assert len(new_vids) == len(set(new_vids))


def test_specialized_names_deterministic():
    _p, _i, sdg1 = load_fig1()
    result1 = specialization_slice(sdg1, sdg1.print_criterion(), contexts="empty")
    _p2, _i2, sdg2 = load_fig1()
    result2 = specialization_slice(sdg2, sdg2.print_criterion(), contexts="empty")
    names1 = sorted(spec.name for spec in result1.pdgs.values())
    names2 = sorted(spec.name for spec in result2.pdgs.values())
    assert names1 == names2
