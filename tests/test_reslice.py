"""§8.3 reslicing-check tests: specialization slicing is idempotent
modulo renaming."""

from repro.core import reslice_check, specialization_slice
from repro.core.reslice import build_transducer
from repro.workloads.paper_figures import (
    load_exit_example,
    load_fig1,
    load_fig2,
    load_fig15,
    load_fig16,
    load_flawed_example,
)


def run_check(sdg, contexts="empty"):
    result = specialization_slice(sdg, sdg.print_criterion(), contexts=contexts)
    return result, reslice_check(result)


def test_fig1_idempotent():
    _p, _i, sdg = load_fig1()
    _result, ok = run_check(sdg)
    assert ok


def test_fig2_idempotent_recursive():
    _p, _i, sdg = load_fig2()
    _result, ok = run_check(sdg)
    assert ok


def test_fig16_idempotent():
    _p, _i, sdg = load_fig16()
    _result, ok = run_check(sdg)
    assert ok


def test_fig15_idempotent():
    _o, _l, _i, sdg = load_fig15()
    _result, ok = run_check(sdg)
    assert ok


def test_exit_example_idempotent():
    _p, _i, sdg = load_exit_example()
    _result, ok = run_check(sdg, contexts="reachable")
    assert ok


def test_flawed_example_idempotent():
    _p, _i, sdg = load_flawed_example()
    _result, ok = run_check(sdg)
    assert ok


def test_transducer_maps_all_r_symbols():
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    transducer = build_transducer(result)
    for new_vid in result.sdg.vertices:
        assert transducer.get(new_vid) in sdg.vertices
    for new_label in result.sdg.call_sites:
        assert transducer.get(new_label) in sdg.call_sites


def test_reslice_detects_corruption():
    """Sanity: the check must fail if R is tampered with (a vertex's
    mapping redirected)."""
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    # Redirect one mapped vertex to a different original vertex.
    victim = next(
        new_vid
        for new_vid, orig in result.map_back_vertex.items()
        if result.sdg.vertices[new_vid].kind == "statement"
    )
    other = next(
        vid
        for vid in sdg.vertices
        if vid != result.map_back_vertex[victim]
        and sdg.vertices[vid].kind == "statement"
    )
    result.map_back_vertex[victim] = other
    assert not reslice_check(result)


def test_empty_slice_trivially_idempotent():
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, [], contexts="empty")
    assert reslice_check(result)
