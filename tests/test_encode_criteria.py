"""SDG-to-PDS encoding (Fig. 8) and criterion-automaton tests."""

from repro.core.criteria import (
    all_contexts_criterion,
    configs_criterion,
    empty_stack_criterion,
    reachable_configs_automaton,
    reachable_contexts_criterion,
)
from repro.pds import encode_sdg, prestar
from repro.sdg import CALL, CONTROL, FLOW, PARAM_IN, PARAM_OUT, SUMMARY
from repro.workloads.paper_figures import load_fig1, load_fig2


def test_rule_kinds_follow_edge_kinds():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    pds = encoding.pds
    intra_edges = sdg.edge_count((CONTROL, FLOW, "library"))
    call_edges = sdg.edge_count((CALL,))
    param_in_edges = sdg.edge_count((PARAM_IN,))
    param_out_edges = sdg.edge_count((PARAM_OUT,))
    pops = [r for r in pds.rules if r.kind == "pop"]
    pushes = [r for r in pds.rules if r.kind == "push"]
    internals = [r for r in pds.rules if r.kind == "internal"]
    # One pop per formal-out with outgoing param-out edges; one internal
    # per param-out edge; pushes = call + param-in edges.
    assert len(pushes) == call_edges + param_in_edges
    assert len(internals) == intra_edges + param_out_edges
    assert len(pops) == len(encoding.fo_location)


def test_summary_edges_not_encoded():
    _p, _i, sdg = load_fig1()
    summary_count = sdg.edge_count((SUMMARY,))
    assert summary_count > 0  # suite builds summaries by default
    encoding = encode_sdg(sdg)
    # Rule count must be independent of summary edges.
    assert all(
        r.kind in ("pop", "internal", "push") for r in encoding.pds.rules
    )
    intra = sdg.edge_count((CONTROL, FLOW, "library"))
    internals = [r for r in encoding.pds.rules if r.kind == "internal"]
    param_out = sdg.edge_count((PARAM_OUT,))
    assert len(internals) == intra + param_out


def test_encoding_cached():
    _p, _i, sdg = load_fig1()
    assert encode_sdg(sdg) is encode_sdg(sdg)


def test_symbols_partitioned():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    assert encoding.vertex_symbols.isdisjoint(encoding.site_symbols)
    assert encoding.is_vertex_symbol(next(iter(sdg.vertices)))
    assert encoding.is_site_symbol("C1")


def test_empty_stack_criterion_language():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    criterion = sdg.print_criterion()
    auto = empty_stack_criterion(encoding, criterion)
    (vid,) = criterion
    assert auto.accepts([vid])
    assert not auto.accepts([vid, "C1"])


def test_all_contexts_criterion_language():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    (vid,) = sdg.print_criterion()
    auto = all_contexts_criterion(encoding, [vid])
    assert auto.accepts([vid])
    assert auto.accepts([vid, "C1", "C2"])


def test_configs_criterion_language():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    fi = sdg.formal_ins["p"][("param", 1)]
    auto = configs_criterion(encoding, [(fi, ("C1",)), (fi, ("C2",))])
    assert auto.accepts([fi, "C1"])
    assert auto.accepts([fi, "C2"])
    assert not auto.accepts([fi, "C3"])
    assert not auto.accepts([fi])


def test_reachable_configs_fig1():
    """In the non-recursive Fig. 1, the reachable configurations are the
    finite set of Eqn. (1): p's vertices under C1/C2/C3 only."""
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    reachable = reachable_configs_automaton(encoding)
    entry_p = sdg.entry_vertex["p"]
    assert reachable.accepts_from("p", (entry_p, "C1"))
    assert reachable.accepts_from("p", (entry_p, "C2"))
    assert not reachable.accepts_from("p", (entry_p,))
    assert not reachable.accepts_from("p", (entry_p, "C1", "C1"))
    entry_main = sdg.entry_vertex["main"]
    assert reachable.accepts_from("p", (entry_main,))


def test_reachable_configs_recursive():
    """Fig. 2: r's entry is reachable under (C3)^n C1 for every n."""
    _p, _i, sdg = load_fig2()
    encoding = encode_sdg(sdg)
    reachable = reachable_configs_automaton(encoding)
    entry_r = sdg.entry_vertex["r"]
    recursive_site = next(
        s.label for s in sdg.call_sites.values() if s.caller == "r" and s.callee == "r"
    )
    main_site = next(
        s.label for s in sdg.call_sites.values() if s.caller == "main" and s.callee == "r"
    )
    for depth in range(4):
        stack = (entry_r,) + (recursive_site,) * depth + (main_site,)
        assert reachable.accepts_from("p", stack)
    assert not reachable.accepts_from("p", (entry_r, main_site, main_site))


def test_reachable_contexts_criterion():
    _p, _i, sdg = load_fig2()
    encoding = encode_sdg(sdg)
    entry_s = sdg.entry_vertex["s"]
    auto = reachable_contexts_criterion(encoding, [entry_s])
    # s is only called from r, which is called from main (possibly
    # through recursion).
    s_sites = [s.label for s in sdg.call_sites.values() if s.callee == "s"]
    r_rec = next(
        s.label for s in sdg.call_sites.values() if s.caller == "r" and s.callee == "r"
    )
    r_main = next(
        s.label for s in sdg.call_sites.values() if s.caller == "main" and s.callee == "r"
    )
    assert auto.accepts([entry_s, s_sites[0], r_main])
    assert auto.accepts([entry_s, s_sites[0], r_rec, r_main])
    assert not auto.accepts([entry_s])
    assert not auto.accepts([entry_s, r_main])


def test_elems_matches_closure(subtests=None):
    from repro.core.criteria import FINAL
    from repro.fsa import FiniteAutomaton
    from repro.sdg import backward_closure_slice

    _p, _i, sdg = load_fig2()
    encoding = encode_sdg(sdg)
    criterion = sdg.print_criterion()
    query = empty_stack_criterion(encoding, criterion)
    saturated = prestar(encoding.pds, query)
    assert encoding.elems(saturated) == backward_closure_slice(sdg, criterion)
